//! E14: failure injection against the declared `@error` policies
//! (paper §III/§VI: non-functional annotations; the avionics case \[9\]).
//!
//! For each policy — retry, failover, ignore, escalate — a device is
//! broken in a running application and the observable behaviour is
//! asserted: which failures are masked, which surface, and what the
//! registry recovery statistics record.

use diaspec_apps::avionics::{build as build_avionics, AvionicsConfig};
use diaspec_devices::avionics::{FlightModelConfig, FlightState};
use diaspec_devices::common::{ActuationLog, FailingDevice, FaultMode, RecordingActuator};
use diaspec_runtime::component::ContextActivation;
use diaspec_runtime::engine::{ContextApi, ControllerApi, Orchestrator};
use diaspec_runtime::error::RuntimeError;
use diaspec_runtime::value::Value;
use std::sync::Arc;

fn calm_avionics() -> AvionicsConfig {
    AvionicsConfig {
        dynamics: FlightModelConfig {
            turbulence_ft: 0.0,
            ..FlightModelConfig::default()
        },
        ..AvionicsConfig::default()
    }
}

#[test]
fn failover_policy_keeps_avionics_flying() {
    let mut app = build_avionics(AvionicsConfig {
        altimeter_fault: Some(FaultMode::Always),
        initial: FlightState {
            altitude_ft: 9_400.0,
            ..FlightState::default()
        },
        ..calm_avionics()
    })
    .unwrap();
    app.orchestrator.run_until(4 * 60 * 1000);
    assert!((app.altitude_ft() - 10_000.0).abs() < 200.0);
    assert!(app.orchestrator.drain_errors().is_empty());
    let stats = app.orchestrator.registry().stats();
    assert!(stats.driver_failures > 0);
    assert!(stats.failovers >= stats.driver_failures / 2);
}

#[test]
fn intermittent_fault_is_also_masked() {
    let mut app = build_avionics(AvionicsConfig {
        altimeter_fault: Some(FaultMode::Probabilistic {
            probability: 0.5,
            seed: 17,
        }),
        ..calm_avionics()
    })
    .unwrap();
    app.orchestrator.run_until(2 * 60 * 1000);
    assert!(app.orchestrator.drain_errors().is_empty());
    let stats = app.orchestrator.registry().stats();
    assert!(stats.driver_failures > 10, "{stats:?}");
    assert_eq!(stats.driver_failures, stats.failovers, "each masked once");
}

#[test]
fn retry_policy_masks_transient_airspeed_faults() {
    // The airspeed sensor declares @error(policy = "retry", attempts = 3).
    // Replace it with a probabilistically failing driver: with p = 0.5 per
    // call and 3 attempts, an unmasked failure needs three misses in a row
    // (p = 0.125) — retries must measurably reduce surfaced errors.
    let mut app = build_avionics(calm_avionics()).unwrap();
    app.orchestrator
        .unbind_entity(&"airspeed-1".into())
        .unwrap();
    let aircraft = app.aircraft.clone();
    app.orchestrator
        .bind_entity(
            "airspeed-1".into(),
            "AirspeedSensor",
            Default::default(),
            Box::new(FailingDevice::new(
                diaspec_devices::avionics::FlightSensorDriver::new(aircraft),
                FaultMode::Probabilistic {
                    probability: 0.5,
                    seed: 23,
                },
            )),
        )
        .unwrap();
    app.orchestrator.run_until(2 * 60 * 1000);
    let stats = app.orchestrator.registry().stats();
    assert!(stats.retries > 0, "{stats:?}");
    // Some failures may still escalate after 3 attempts; they surface as
    // contained component errors, far fewer than the raw failure count.
    let surfaced = app.orchestrator.drain_errors().len() as u64;
    assert!(
        surfaced < stats.driver_failures / 2,
        "retries masked most failures: surfaced {surfaced}, raw {}",
        stats.driver_failures
    );
}

#[test]
fn ignore_policy_drops_readings_silently() {
    let spec = Arc::new(
        diaspec_core::compile_str(
            r#"
            @error(policy = "ignore")
            device Flaky { source v as Integer; }
            device Sink { action absorb(total as Integer); }
            context Sum as Integer {
              when periodic v from Flaky <1 min> always publish;
            }
            controller Out { when provided Sum do absorb on Sink; }
            "#,
        )
        .unwrap(),
    );
    let mut orch = Orchestrator::new(spec);
    orch.register_context(
        "Sum",
        |_: &mut ContextApi<'_>, activation: ContextActivation<'_>| match activation {
            ContextActivation::Batch(batch) => Ok(Some(Value::Int(
                batch.readings.iter().filter_map(|r| r.value.as_int()).sum(),
            ))),
            _ => Ok(None),
        },
    )
    .unwrap();
    let log = ActuationLog::new();
    let log_for_controller = log.clone();
    orch.register_controller(
        "Out",
        move |api: &mut ControllerApi<'_>, _: &str, value: &Value| {
            let _ = &log_for_controller;
            for sink in api.discover("Sink")?.ids() {
                api.invoke(&sink, "absorb", std::slice::from_ref(value))?;
            }
            Ok(())
        },
    )
    .unwrap();
    // Two healthy sensors and one permanently broken one.
    for (id, value) in [("f-1", 10i64), ("f-2", 20)] {
        orch.bind_entity(
            id.into(),
            "Flaky",
            Default::default(),
            Box::new(move |_: &str, _: u64| Ok(Value::Int(value))),
        )
        .unwrap();
    }
    orch.bind_entity(
        "f-broken".into(),
        "Flaky",
        Default::default(),
        Box::new(FailingDevice::new(
            RecordingActuator::new(ActuationLog::new()),
            FaultMode::Always,
        )),
    )
    .unwrap();
    orch.bind_entity(
        "sink-1".into(),
        "Sink",
        Default::default(),
        Box::new(RecordingActuator::new(log.clone())),
    )
    .unwrap();
    orch.launch().unwrap();
    orch.run_until(60_000);
    // The broken sensor's reading is simply absent: sum = 30, no errors.
    assert_eq!(log.last().unwrap().args[0], Value::Int(30));
    assert!(orch.drain_errors().is_empty());
    assert_eq!(orch.registry().stats().ignored_failures, 1);
    assert_eq!(orch.metrics().readings_polled, 2, "broken one skipped");
}

#[test]
fn escalate_policy_surfaces_the_failure() {
    let spec = Arc::new(
        diaspec_core::compile_str(
            r#"
            device Fragile { source v as Integer; }
            device Sink { action absorb; }
            context C as Integer {
              when provided v from Fragile
                get v from Fragile
                always publish;
            }
            controller Out { when provided C do absorb on Sink; }
            "#,
        )
        .unwrap(),
    );
    let mut orch = Orchestrator::new(spec);
    orch.register_context("C", |api: &mut ContextApi<'_>, _: ContextActivation<'_>| {
        // Default policy is escalate: the failing get propagates.
        let result = api.get_device_source("Fragile", "v");
        assert!(matches!(result, Err(RuntimeError::Device(_))), "{result:?}");
        Err(result.unwrap_err().into())
    })
    .unwrap();
    orch.register_controller(
        "Out",
        |_: &mut ControllerApi<'_>, _: &str, _: &Value| Ok(()),
    )
    .unwrap();
    orch.bind_entity(
        "fragile-1".into(),
        "Fragile",
        Default::default(),
        Box::new(FailingDevice::new(
            RecordingActuator::new(ActuationLog::new()),
            FaultMode::Always,
        )),
    )
    .unwrap();
    orch.bind_entity(
        "sink-1".into(),
        "Sink",
        Default::default(),
        Box::new(RecordingActuator::new(ActuationLog::new())),
    )
    .unwrap();
    orch.launch().unwrap();
    let fragile = "fragile-1".into();
    orch.emit_at(5, &fragile, "v", Value::Int(1), None).unwrap();
    orch.run_until(100);
    let errors = orch.drain_errors();
    assert_eq!(errors.len(), 1, "{errors:?}");
}

#[test]
fn runtime_unbind_rebind_recovers_an_application() {
    // Losing every sensor surfaces errors; rebinding at runtime (paper
    // §IV: runtime binding) restores the data flow without a restart.
    let mut app = build_avionics(calm_avionics()).unwrap();
    for position in ["NOSE", "LEFT_WING", "RIGHT_WING"] {
        app.orchestrator
            .unbind_entity(&format!("altimeter-{position}").into())
            .unwrap();
    }
    app.orchestrator.run_until(3_000);
    assert!(!app.orchestrator.drain_errors().is_empty());

    // A maintenance process rebinds one altimeter.
    let aircraft = app.aircraft.clone();
    let mut attrs = diaspec_runtime::entity::AttributeMap::new();
    attrs.insert(
        "position".to_owned(),
        Value::enum_value("PositionEnum", "NOSE"),
    );
    app.orchestrator
        .bind_entity(
            "altimeter-NOSE-replacement".into(),
            "Altimeter",
            attrs,
            Box::new(diaspec_devices::avionics::FlightSensorDriver::new(aircraft)),
        )
        .unwrap();
    app.orchestrator.run_until(10_000);
    let errors = app.orchestrator.drain_errors();
    // Errors stop once the replacement serves readings.
    assert!(
        errors.iter().all(|e| e.at < 4_000),
        "no errors after the rebind: {errors:?}"
    );
    assert!(app.orchestrator.last_value("FlightState").is_some());
}

//! E14: failure injection against the declared `@error` policies
//! (paper §III/§VI: non-functional annotations; the avionics case \[9\]).
//!
//! For each policy — retry, failover, ignore, escalate — a device is
//! broken in a running application and the observable behaviour is
//! asserted: which failures are masked, which surface, and what the
//! registry recovery statistics record.

use diaspec_apps::avionics::{build as build_avionics, AvionicsConfig};
use diaspec_devices::avionics::{FlightModelConfig, FlightState};
use diaspec_devices::common::{ActuationLog, FailingDevice, FaultMode, RecordingActuator};
use diaspec_runtime::component::ContextActivation;
use diaspec_runtime::engine::{ContextApi, ControllerApi, Orchestrator};
use diaspec_runtime::error::RuntimeError;
use diaspec_runtime::fault::{FaultPlan, RecoveryConfig, RetryConfig};
use diaspec_runtime::trace::TraceKind;
use diaspec_runtime::value::Value;
use std::sync::Arc;

fn calm_avionics() -> AvionicsConfig {
    AvionicsConfig {
        dynamics: FlightModelConfig {
            turbulence_ft: 0.0,
            ..FlightModelConfig::default()
        },
        ..AvionicsConfig::default()
    }
}

#[test]
fn failover_policy_keeps_avionics_flying() {
    let mut app = build_avionics(AvionicsConfig {
        altimeter_fault: Some(FaultMode::Always),
        initial: FlightState {
            altitude_ft: 9_400.0,
            ..FlightState::default()
        },
        ..calm_avionics()
    })
    .unwrap();
    app.orchestrator.run_until(4 * 60 * 1000);
    assert!((app.altitude_ft() - 10_000.0).abs() < 200.0);
    assert!(app.orchestrator.drain_errors().is_empty());
    let stats = app.orchestrator.registry().stats();
    assert!(stats.driver_failures > 0);
    assert!(stats.failovers >= stats.driver_failures / 2);
}

#[test]
fn intermittent_fault_is_also_masked() {
    let mut app = build_avionics(AvionicsConfig {
        altimeter_fault: Some(FaultMode::Probabilistic {
            probability: 0.5,
            seed: 17,
        }),
        ..calm_avionics()
    })
    .unwrap();
    app.orchestrator.run_until(2 * 60 * 1000);
    assert!(app.orchestrator.drain_errors().is_empty());
    let stats = app.orchestrator.registry().stats();
    assert!(stats.driver_failures > 10, "{stats:?}");
    assert_eq!(stats.driver_failures, stats.failovers, "each masked once");
}

#[test]
fn retry_policy_masks_transient_airspeed_faults() {
    // The airspeed sensor declares @error(policy = "retry", attempts = 3).
    // Replace it with a probabilistically failing driver: with p = 0.5 per
    // call and 3 attempts, an unmasked failure needs three misses in a row
    // (p = 0.125) — retries must measurably reduce surfaced errors.
    let mut app = build_avionics(calm_avionics()).unwrap();
    app.orchestrator
        .unbind_entity(&"airspeed-1".into())
        .unwrap();
    let aircraft = app.aircraft.clone();
    app.orchestrator
        .bind_entity(
            "airspeed-1".into(),
            "AirspeedSensor",
            Default::default(),
            Box::new(FailingDevice::new(
                diaspec_devices::avionics::FlightSensorDriver::new(aircraft),
                FaultMode::Probabilistic {
                    probability: 0.5,
                    seed: 23,
                },
            )),
        )
        .unwrap();
    app.orchestrator.run_until(2 * 60 * 1000);
    let stats = app.orchestrator.registry().stats();
    assert!(stats.retries > 0, "{stats:?}");
    // Some failures may still escalate after 3 attempts; they surface as
    // contained component errors, far fewer than the raw failure count.
    let surfaced = app.orchestrator.drain_errors().len() as u64;
    assert!(
        surfaced < stats.driver_failures / 2,
        "retries masked most failures: surfaced {surfaced}, raw {}",
        stats.driver_failures
    );
}

#[test]
fn ignore_policy_drops_readings_silently() {
    let spec = Arc::new(
        diaspec_core::compile_str(
            r#"
            @error(policy = "ignore")
            device Flaky { source v as Integer; }
            device Sink { action absorb(total as Integer); }
            context Sum as Integer {
              when periodic v from Flaky <1 min> always publish;
            }
            controller Out { when provided Sum do absorb on Sink; }
            "#,
        )
        .unwrap(),
    );
    let mut orch = Orchestrator::new(spec);
    orch.register_context(
        "Sum",
        |_: &mut ContextApi<'_>, activation: ContextActivation<'_>| match activation {
            ContextActivation::Batch(batch) => Ok(Some(Value::Int(
                batch.readings.iter().filter_map(|r| r.value.as_int()).sum(),
            ))),
            _ => Ok(None),
        },
    )
    .unwrap();
    let log = ActuationLog::new();
    let log_for_controller = log.clone();
    orch.register_controller(
        "Out",
        move |api: &mut ControllerApi<'_>, _: &str, value: &Value| {
            let _ = &log_for_controller;
            for sink in api.discover("Sink")?.ids() {
                api.invoke(&sink, "absorb", std::slice::from_ref(value))?;
            }
            Ok(())
        },
    )
    .unwrap();
    // Two healthy sensors and one permanently broken one.
    for (id, value) in [("f-1", 10i64), ("f-2", 20)] {
        orch.bind_entity(
            id.into(),
            "Flaky",
            Default::default(),
            Box::new(move |_: &str, _: u64| Ok(Value::Int(value))),
        )
        .unwrap();
    }
    orch.bind_entity(
        "f-broken".into(),
        "Flaky",
        Default::default(),
        Box::new(FailingDevice::new(
            RecordingActuator::new(ActuationLog::new()),
            FaultMode::Always,
        )),
    )
    .unwrap();
    orch.bind_entity(
        "sink-1".into(),
        "Sink",
        Default::default(),
        Box::new(RecordingActuator::new(log.clone())),
    )
    .unwrap();
    orch.launch().unwrap();
    orch.run_until(60_000);
    // The broken sensor's reading is simply absent: sum = 30, no errors.
    assert_eq!(log.last().unwrap().args[0], Value::Int(30));
    assert!(orch.drain_errors().is_empty());
    assert_eq!(orch.registry().stats().ignored_failures, 1);
    assert_eq!(orch.metrics().readings_polled, 2, "broken one skipped");
}

#[test]
fn escalate_policy_surfaces_the_failure() {
    let spec = Arc::new(
        diaspec_core::compile_str(
            r#"
            device Fragile { source v as Integer; }
            device Sink { action absorb; }
            context C as Integer {
              when provided v from Fragile
                get v from Fragile
                always publish;
            }
            controller Out { when provided C do absorb on Sink; }
            "#,
        )
        .unwrap(),
    );
    let mut orch = Orchestrator::new(spec);
    orch.register_context("C", |api: &mut ContextApi<'_>, _: ContextActivation<'_>| {
        // Default policy is escalate: the failing get propagates.
        let result = api.get_device_source("Fragile", "v");
        assert!(matches!(result, Err(RuntimeError::Device(_))), "{result:?}");
        Err(result.unwrap_err().into())
    })
    .unwrap();
    orch.register_controller(
        "Out",
        |_: &mut ControllerApi<'_>, _: &str, _: &Value| Ok(()),
    )
    .unwrap();
    orch.bind_entity(
        "fragile-1".into(),
        "Fragile",
        Default::default(),
        Box::new(FailingDevice::new(
            RecordingActuator::new(ActuationLog::new()),
            FaultMode::Always,
        )),
    )
    .unwrap();
    orch.bind_entity(
        "sink-1".into(),
        "Sink",
        Default::default(),
        Box::new(RecordingActuator::new(ActuationLog::new())),
    )
    .unwrap();
    orch.launch().unwrap();
    let fragile = "fragile-1".into();
    orch.emit_at(5, &fragile, "v", Value::Int(1), None).unwrap();
    orch.run_until(100);
    let errors = orch.drain_errors();
    assert_eq!(errors.len(), 1, "{errors:?}");
}

// ---- the seeded fault plan + recovery machinery (leases, retry, fallback) ------

/// A small churn scenario: one leased sensor polled every second feeds a
/// relay context whose publications actuate a sink; a standby sensor
/// waits for promotion. With `faults` a seeded plan drops ~30% of
/// messages and crashes the primary sensor at t = 5.5 s.
const CHURN_SPEC: &str = r#"
    @error(policy = "ignore")
    device Sensor { attribute zone as String; source v as Integer; }
    device Sink { action absorb(total as Integer); }
    context Relay as Integer {
      when periodic v from Sensor <1 sec> maybe publish;
    }
    controller Out { when provided Relay do absorb on Sink; }
"#;

fn build_churn(faults: bool) -> (Orchestrator, ActuationLog) {
    let spec = Arc::new(diaspec_core::compile_str(CHURN_SPEC).unwrap());
    let mut orch = Orchestrator::new(spec);
    orch.register_context(
        "Relay",
        |_: &mut ContextApi<'_>, activation: ContextActivation<'_>| match activation {
            ContextActivation::Batch(batch) if !batch.readings.is_empty() => Ok(Some(Value::Int(
                batch.readings.iter().filter_map(|r| r.value.as_int()).sum(),
            ))),
            _ => Ok(None),
        },
    )
    .unwrap();
    let log = ActuationLog::new();
    let sink_log = log.clone();
    orch.register_controller(
        "Out",
        move |api: &mut ControllerApi<'_>, _: &str, value: &Value| {
            let _ = &sink_log;
            for sink in api.discover("Sink")?.ids() {
                api.invoke(&sink, "absorb", std::slice::from_ref(value))?;
            }
            Ok(())
        },
    )
    .unwrap();
    let mut attrs = diaspec_runtime::entity::AttributeMap::new();
    attrs.insert("zone".to_owned(), Value::Str("east".into()));
    orch.bind_entity(
        "sensor-a".into(),
        "Sensor",
        attrs.clone(),
        Box::new(|_: &str, _: u64| Ok(Value::Int(5))),
    )
    .unwrap();
    orch.bind_entity(
        "sink-1".into(),
        "Sink",
        Default::default(),
        Box::new(RecordingActuator::new(log.clone())),
    )
    .unwrap();
    orch.register_standby(
        "sensor-b".into(),
        "Sensor",
        attrs,
        Box::new(|_: &str, _: u64| Ok(Value::Int(7))),
    )
    .unwrap();
    if faults {
        orch.enable_faults(
            FaultPlan::seeded(42)
                .drop_messages(0.3)
                .crash_at(5_500, "sensor-a"),
        )
        .unwrap();
    }
    // Recovery machinery is on in BOTH runs: leases with a 2 s TTL and
    // default exponential-backoff retry. Without faults it must be free.
    orch.enable_recovery(
        RecoveryConfig::default()
            .with_leases(2_000)
            .with_retry(RetryConfig::default()),
    )
    .unwrap();
    orch.set_tracing(true);
    orch.launch().unwrap();
    (orch, log)
}

fn is_recovery_kind(kind: &TraceKind) -> bool {
    matches!(
        kind,
        TraceKind::FaultInjected { .. }
            | TraceKind::LeaseExpired { .. }
            | TraceKind::Rebound { .. }
            | TraceKind::DeliveryRetry { .. }
            | TraceKind::FallbackActuation { .. }
    )
}

#[test]
fn seeded_crash_expires_lease_rebinds_standby_and_retries_drops() {
    let (mut orch, log) = build_churn(true);
    orch.run_until(20_000);
    let trace = orch.take_trace();

    // 1. The scheduled crash was injected and traced.
    let crash_at = trace
        .iter()
        .find_map(|e| match &e.kind {
            TraceKind::FaultInjected { fault } if fault == "crash sensor-a" => Some(e.at),
            _ => None,
        })
        .expect("crash injected");
    assert_eq!(crash_at, 5_500);

    // 2. The crashed device stops renewing its lease; the sweep detects
    // the expiry at the deadline (last renewal at t = 5 s + 2 s TTL).
    let expiry = trace
        .iter()
        .find(|e| matches!(&e.kind, TraceKind::LeaseExpired { entity } if entity == "sensor-a"))
        .expect("lease expired");
    assert_eq!(expiry.at, 7_000);

    // 3. The registry re-binds the matching standby in the same sweep.
    assert!(
        trace.iter().any(|e| matches!(
            &e.kind,
            TraceKind::Rebound { lost, replacement }
                if lost == "sensor-a" && replacement == "sensor-b" && e.at == 7_000
        )),
        "standby promoted: {trace:#?}"
    );

    // 4. Dropped deliveries were retried with backoff.
    assert!(
        trace
            .iter()
            .any(|e| matches!(&e.kind, TraceKind::DeliveryRetry { to, attempt: 1 } if to == "Out")),
        "first retry traced: {trace:#?}"
    );
    let metrics = orch.metrics();
    assert!(metrics.delivery_retries > 0, "{metrics:?}");
    assert_eq!(metrics.lease_expiries, 1, "{metrics:?}");
    assert_eq!(metrics.rebinds, 1, "{metrics:?}");
    assert!(metrics.faults_injected > 1, "crash + drops: {metrics:?}");

    // 5. The replacement keeps the chain alive: the sink is actuated with
    // the standby's reading (7) after the rebind.
    assert!(
        log.entries().iter().any(|a| a.args[0] == Value::Int(7)),
        "standby readings reached the sink: {:?}",
        log.entries()
    );
    assert!(orch.drain_errors().is_empty(), "recovery masked everything");
}

#[test]
fn seeded_fault_run_is_reproducible_event_for_event() {
    let (mut a, _) = build_churn(true);
    let (mut b, _) = build_churn(true);
    a.run_until(20_000);
    b.run_until(20_000);
    let render = |orch: &mut Orchestrator| -> Vec<String> {
        orch.take_trace().iter().map(ToString::to_string).collect()
    };
    assert_eq!(render(&mut a), render(&mut b));
    assert_eq!(format!("{:?}", a.metrics()), format!("{:?}", b.metrics()));
}

#[test]
fn fault_free_run_produces_zero_recovery_events() {
    let (mut orch, log) = build_churn(false);
    orch.run_until(20_000);
    let trace = orch.take_trace();
    assert!(
        !trace.iter().any(|e| is_recovery_kind(&e.kind)),
        "no recovery events without faults: {trace:#?}"
    );
    let metrics = orch.metrics();
    assert_eq!(metrics.recovery_actions(), 0, "{metrics:?}");
    assert_eq!(metrics.faults_injected, 0, "{metrics:?}");
    assert_eq!(metrics.deliveries_abandoned, 0, "{metrics:?}");
    // Every poll publication reaches the sink: polls at 1..=20 s.
    assert_eq!(log.count("absorb"), 20, "{:?}", log.entries());
    assert!(orch.drain_errors().is_empty());
}

#[test]
fn declared_elevator_fallback_fires_and_is_traced() {
    // The avionics design declares
    // `@error(policy = "retry", attempts = 2, fallback = "neutral")` on
    // the Elevator: with the primary surface dead, the runtime retries
    // and then drives the backup surface to neutral — visible in the
    // trace as a fallback actuation.
    let mut app = build_avionics(AvionicsConfig {
        elevator_fault: Some(FaultMode::Always),
        initial: FlightState {
            altitude_ft: 9_000.0,
            ..FlightState::default()
        },
        ..calm_avionics()
    })
    .unwrap();
    app.orchestrator.set_tracing(true);
    app.orchestrator.run_until(30_000);
    let trace = app.orchestrator.take_trace();
    assert!(
        trace.iter().any(|e| matches!(
            &e.kind,
            TraceKind::FallbackActuation { entity, action }
                if entity == "elevator-1" && action == "neutral"
        )),
        "declared fallback in the trace: {trace:#?}"
    );
    assert!(app.orchestrator.metrics().fallback_actuations > 0);
    assert!(app.backup_elevator.count("neutral") > 0);
    assert!(app.orchestrator.drain_errors().is_empty());
}

#[test]
fn runtime_unbind_rebind_recovers_an_application() {
    // Losing every sensor surfaces errors; rebinding at runtime (paper
    // §IV: runtime binding) restores the data flow without a restart.
    let mut app = build_avionics(calm_avionics()).unwrap();
    for position in ["NOSE", "LEFT_WING", "RIGHT_WING"] {
        app.orchestrator
            .unbind_entity(&format!("altimeter-{position}").into())
            .unwrap();
    }
    app.orchestrator.run_until(3_000);
    assert!(!app.orchestrator.drain_errors().is_empty());

    // A maintenance process rebinds one altimeter.
    let aircraft = app.aircraft.clone();
    let mut attrs = diaspec_runtime::entity::AttributeMap::new();
    attrs.insert(
        "position".to_owned(),
        Value::enum_value("PositionEnum", "NOSE"),
    );
    app.orchestrator
        .bind_entity(
            "altimeter-NOSE-replacement".into(),
            "Altimeter",
            attrs,
            Box::new(diaspec_devices::avionics::FlightSensorDriver::new(aircraft)),
        )
        .unwrap();
    app.orchestrator.run_until(10_000);
    let errors = app.orchestrator.drain_errors();
    // Errors stop once the replacement serves readings.
    assert!(
        errors.iter().all(|e| e.at < 4_000),
        "no errors after the rebind: {errors:?}"
    );
    assert!(app.orchestrator.last_value("FlightState").is_some());
}

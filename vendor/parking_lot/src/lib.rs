//! Offline drop-in subset of the `parking_lot` API.
//!
//! Backed by `std::sync` primitives; lock poisoning is transparently
//! ignored (as `parking_lot` has no poisoning), so `lock()` returns the
//! guard directly rather than a `Result`.

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock without poisoning, mirroring
/// `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates an unlocked mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock without poisoning, mirroring
/// `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates an unlocked lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
    }
}

//! Offline drop-in subset of the `criterion` API.
//!
//! Keeps the workspace's bench targets compiling and runnable without the
//! real crate (unfetchable in this network-isolated build). Measurement
//! is intentionally simple: per benchmark, one warm-up call followed by
//! timed iterations under a small time budget, reporting the mean and
//! minimum wall-clock time per iteration. No statistical analysis, plots,
//! or baseline storage.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepts (and ignores) criterion CLI arguments for API parity.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }
}

/// Units processed per iteration, for derived rates in the report.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes consumed per iteration.
    Bytes(u64),
    /// Logical elements consumed per iteration.
    Elements(u64),
}

/// A named benchmark with a parameter, e.g. `parse/small`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets how many timed iterations to attempt per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    /// Declares the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark identified by `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        self.report(&id.full, &bencher);
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        self.report(&name.into(), &bencher);
    }

    /// Ends the group (report lines are already printed; kept for parity).
    pub fn finish(self) {}

    fn report(&self, id: &str, bencher: &Bencher) {
        let mean = bencher.mean();
        let rate = self.throughput.map(|t| match t {
            Throughput::Bytes(n) => format!(
                ", {:.1} MiB/s",
                n as f64 / mean.as_secs_f64() / (1024.0 * 1024.0)
            ),
            Throughput::Elements(n) => {
                format!(", {:.0} elem/s", n as f64 / mean.as_secs_f64())
            }
        });
        println!(
            "{}/{}: mean {:?}, min {:?} over {} iters{}",
            self.name,
            id,
            mean,
            bencher.min,
            bencher.iters,
            rate.unwrap_or_default()
        );
    }
}

/// Hands the routine under test to the timing loop.
pub struct Bencher {
    max_iters: usize,
    total: Duration,
    min: Duration,
    iters: u64,
}

impl Bencher {
    fn new(max_iters: usize) -> Self {
        Bencher {
            max_iters: max_iters.max(1),
            total: Duration::ZERO,
            min: Duration::MAX,
            iters: 0,
        }
    }

    /// Times `routine`: one warm-up call, then iterations until the
    /// sample count or a 200 ms budget is reached, whichever comes first.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        let budget = Duration::from_millis(200);
        let started = Instant::now();
        for _ in 0..self.max_iters {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            let elapsed = t0.elapsed();
            self.total += elapsed;
            self.min = self.min.min(elapsed);
            self.iters += 1;
            if started.elapsed() > budget {
                break;
            }
        }
    }

    fn mean(&self) -> Duration {
        if self.iters == 0 {
            Duration::ZERO
        } else {
            self.total / u32::try_from(self.iters).unwrap_or(u32::MAX)
        }
    }
}

/// Opaque value barrier, re-exported for call-site parity.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("f", 1), &3u64, |b, &x| {
            b.iter(|| x * 2);
        });
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}

//! Offline drop-in subset of the `serde_json` API.
//!
//! Renders and parses the vendored serde data model ([`Value`]) as JSON.
//! Follows upstream serde_json conventions: compact output with no spaces
//! (`to_string`), two-space indent (`to_string_pretty`), externally tagged
//! enums (handled by the derive), and `null` for non-finite floats.
//! Finite floats with no fractional part print with a trailing `.0` so
//! they parse back as floats rather than integers.

#![forbid(unsafe_code)]

pub use serde::content::Value;
use serde::{Deserialize, Serialize};

/// A JSON (de)serialization error: a plain message.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Infallible for this implementation; `Result` kept for API parity.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

/// Serializes `value` to JSON with two-space indentation.
///
/// # Errors
///
/// Infallible for this implementation; `Result` kept for API parity.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_content(), Some("  "), 0);
    Ok(out)
}

/// Serializes `value` to compact JSON bytes.
///
/// # Errors
///
/// Infallible for this implementation; `Result` kept for API parity.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a `T` from a JSON string.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or shape mismatch.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse(input)?;
    T::from_content(&value).map_err(Error::from)
}

/// Deserializes a `T` from JSON bytes (must be UTF-8).
///
/// # Errors
///
/// Returns [`Error`] on invalid UTF-8, malformed JSON, or shape mismatch.
pub fn from_slice<T: Deserialize>(input: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(input).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(text)
}

// ---- writer ---------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    if f.fract() == 0.0 && f.abs() < 1e15 {
        // Keep a decimal point so the value parses back as a float.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".into()))
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek()? == byte {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error(format!("invalid token at byte {}", self.pos)))
                }
            }
            b't' => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error(format!("invalid token at byte {}", self.pos)))
                }
            }
            b'f' => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error(format!("invalid token at byte {}", self.pos)))
                }
            }
            b'"' => self.string().map(Value::String),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error(format!(
                "unexpected byte `{}` at {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]`, got `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, got `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one slice.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pair?
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| Error("invalid \\u escape".into()))?);
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error("truncated \\u escape".into()))?;
        let text = std::str::from_utf8(slice).map_err(|_| Error("invalid \\u escape".into()))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| Error("invalid \\u escape".into()))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Int(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::UInt(u))
        } else {
            // Out-of-range integer literal: fall back to float semantics.
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}

/// Re-exported data model for `serde_json::value::Value` paths.
pub mod value {
    pub use super::Value;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip() {
        let v = Value::Object(vec![
            ("a".into(), Value::Int(-3)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".into(), Value::String("x\"\n".into())),
            ("d".into(), Value::Float(2.5)),
        ]);
        let json = to_string(&v).unwrap();
        assert_eq!(
            json,
            "{\"a\":-3,\"b\":[true,null],\"c\":\"x\\\"\\n\",\"d\":2.5}"
        );
        let back: Value = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn whole_floats_keep_decimal_point() {
        let json = to_string(&Value::Float(4.0)).unwrap();
        assert_eq!(json, "4.0");
        let back: Value = from_str(&json).unwrap();
        assert_eq!(back, Value::Float(4.0));
    }

    #[test]
    fn pretty_output_indents() {
        let v = Value::Object(vec![("k".into(), Value::Array(vec![Value::Int(1)]))]);
        let json = to_string_pretty(&v).unwrap();
        assert_eq!(json, "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn parses_unicode_escapes_and_surrogates() {
        let v: Value = from_str("\"\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, Value::String("é😀".into()));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
    }

    #[test]
    fn large_u64_round_trips() {
        let big = u64::MAX;
        let json = to_string(&big).unwrap();
        let back: u64 = from_str(&json).unwrap();
        assert_eq!(back, big);
    }
}

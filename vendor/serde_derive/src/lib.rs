//! Offline `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde subset.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`,
//! which cannot be fetched in this network-isolated build). The parser
//! handles exactly the shapes this workspace uses: non-generic structs
//! with named fields, and non-generic enums whose variants are unit,
//! tuple, or struct-like. Generated code follows upstream serde_json's
//! externally tagged enum convention, so the JSON output is
//! interoperable:
//!
//! - struct           → `{"field": ...}`
//! - unit variant     → `"Variant"`
//! - newtype variant  → `{"Variant": value}`
//! - tuple variant    → `{"Variant": [v0, v1, ...]}`
//! - struct variant   → `{"Variant": {"field": ...}}`
//!
//! The only field attribute understood is `#[serde(default)]`: on
//! deserialization an absent field yields `Default::default()` instead
//! of an error. Other `#[serde(...)]` forms are rejected at compile time
//! rather than silently ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (tree-model `to_content`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item.shape {
        Shape::Struct(fields) => serialize_struct(&item.name, fields),
        Shape::Enum(variants) => serialize_enum(&item.name, variants),
    };
    code.parse()
        .expect("derive(Serialize): generated code parses")
}

/// Derives `serde::Deserialize` (tree-model `from_content`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item.shape {
        Shape::Struct(fields) => deserialize_struct(&item.name, fields),
        Shape::Enum(variants) => deserialize_enum(&item.name, variants),
    };
    code.parse()
        .expect("derive(Deserialize): generated code parses")
}

// ---- input model ----------------------------------------------------------

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    /// Named fields, in declaration order.
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    /// Whether the field carries `#[serde(default)]`.
    default: bool,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Tuple variant with this many unnamed fields.
    Tuple(usize),
    /// Struct variant with these named fields.
    Named(Vec<Field>),
}

// ---- parsing --------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut trees = input.into_iter().peekable();
    // Skip outer attributes, doc comments, and visibility to reach the
    // `struct` / `enum` keyword.
    let mut is_enum = None;
    for tree in trees.by_ref() {
        if let TokenTree::Ident(ident) = &tree {
            match ident.to_string().as_str() {
                "struct" => {
                    is_enum = Some(false);
                    break;
                }
                "enum" => {
                    is_enum = Some(true);
                    break;
                }
                _ => {}
            }
        }
    }
    let is_enum = is_enum.expect("derive input must be a struct or enum");
    let name = match trees.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("expected type name after struct/enum, got {other:?}"),
    };
    let body = loop {
        match trees.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("derive does not support generic type `{name}`")
            }
            Some(_) => continue,
            None => panic!("missing body for `{name}`"),
        }
    };
    let shape = if is_enum {
        Shape::Enum(parse_variants(body))
    } else {
        Shape::Struct(parse_named_fields(body))
    };
    Item { name, shape }
}

/// Extracts field names from a brace-group body of `name: Type` pairs.
/// Types are skipped entirely (commas inside `<...>` are angle-depth
/// tracked; parenthesised tuples arrive as single groups).
fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut trees = body.into_iter().peekable();
    loop {
        let default = skip_attributes_and_visibility(&mut trees);
        let name = match trees.next() {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            None => break,
            other => panic!("expected field name, got {other:?}"),
        };
        match trees.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        skip_type_until_comma(&mut trees);
        fields.push(Field { name, default });
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut trees = body.into_iter().peekable();
    loop {
        skip_attributes_and_visibility(&mut trees);
        let name = match trees.next() {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            None => break,
            other => panic!("expected variant name, got {other:?}"),
        };
        let kind = match trees.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_segments(g.stream());
                trees.next();
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                trees.next();
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        match trees.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => {
                variants.push(Variant { name, kind });
                break;
            }
            other => panic!("expected `,` after variant `{name}`, got {other:?}"),
        }
        variants.push(Variant { name, kind });
    }
    variants
}

/// Skips attributes, doc comments, and visibility before a field or
/// variant, returning whether a `#[serde(default)]` attribute was among
/// them. Any other `#[serde(...)]` form is rejected.
fn skip_attributes_and_visibility(
    trees: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>,
) -> bool {
    let mut default = false;
    loop {
        match trees.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                trees.next();
                if let Some(TokenTree::Group(g)) = trees.next() {
                    default |= parse_serde_attribute(g.stream());
                }
            }
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                trees.next();
                // Optional restriction: pub(crate), pub(super), ...
                if let Some(TokenTree::Group(g)) = trees.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        trees.next();
                    }
                }
            }
            _ => return default,
        }
    }
}

/// Recognizes the bracketed body of a `#[serde(...)]` attribute. Returns
/// true for `serde(default)`; panics on any other serde form (the shim
/// would otherwise silently change serialization semantics); returns
/// false for non-serde attributes.
fn parse_serde_attribute(stream: TokenStream) -> bool {
    let mut trees = stream.into_iter();
    match trees.next() {
        Some(TokenTree::Ident(ident)) if ident.to_string() == "serde" => {}
        _ => return false,
    }
    match trees.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let args: Vec<String> = g.stream().into_iter().map(|t| t.to_string()).collect();
            if args == ["default"] {
                true
            } else {
                panic!(
                    "vendored serde_derive supports only #[serde(default)], got #[serde({})]",
                    args.join("")
                )
            }
        }
        other => panic!("malformed #[serde] attribute: {other:?}"),
    }
}

/// Consumes type tokens up to (and including) the next comma that is not
/// nested inside `<...>`.
fn skip_type_until_comma(trees: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle_depth = 0usize;
    for tree in trees.by_ref() {
        if let TokenTree::Punct(p) = &tree {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Number of comma-separated segments at angle-depth zero (tuple-variant
/// arity). Empty stream → 0.
fn count_top_level_segments(stream: TokenStream) -> usize {
    let mut segments = 0usize;
    let mut in_segment = false;
    let mut angle_depth = 0usize;
    for tree in stream {
        if let TokenTree::Punct(p) = &tree {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    in_segment = false;
                    continue;
                }
                _ => {}
            }
        }
        if !in_segment {
            segments += 1;
            in_segment = true;
        }
    }
    segments
}

// ---- code generation ------------------------------------------------------

/// The initializer expression for one named field: `#[serde(default)]`
/// fields tolerate absence via [`field_or_default`].
///
/// [`field_or_default`]: ../serde/fn.field_or_default.html
fn field_init(f: &Field) -> String {
    let name = &f.name;
    if f.default {
        format!("{name}: ::serde::field_or_default(entries, \"{name}\")?,")
    } else {
        format!("{name}: ::serde::field(entries, \"{name}\")?,")
    }
}

fn serialize_struct(name: &str, fields: &[Field]) -> String {
    let entries: String = fields
        .iter()
        .map(|f| {
            let f = &f.name;
            format!("(\"{f}\".to_string(), ::serde::Serialize::to_content(&self.{f})),")
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::content::Value {{\n\
                 ::serde::content::Value::Object(vec![{entries}])\n\
             }}\n\
         }}"
    )
}

fn deserialize_struct(name: &str, fields: &[Field]) -> String {
    let inits: String = fields.iter().map(field_init).collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_content(value: &::serde::content::Value) -> Result<Self, ::serde::Error> {{\n\
                 let entries = value.as_object().ok_or_else(|| \
                     ::serde::Error::new(\"expected object for struct {name}\"))?;\n\
                 Ok({name} {{ {inits} }})\n\
             }}\n\
         }}"
    )
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| {
            let vn = &v.name;
            match &v.kind {
                VariantKind::Unit => format!(
                    "{name}::{vn} => ::serde::content::Value::String(\"{vn}\".to_string()),"
                ),
                VariantKind::Tuple(1) => format!(
                    "{name}::{vn}(f0) => ::serde::content::Value::Object(vec![\
                         (\"{vn}\".to_string(), ::serde::Serialize::to_content(f0))]),"
                ),
                VariantKind::Tuple(n) => {
                    let binds = (0..*n).map(|i| format!("f{i}")).collect::<Vec<_>>().join(", ");
                    let items = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_content(f{i}),"))
                        .collect::<String>();
                    format!(
                        "{name}::{vn}({binds}) => ::serde::content::Value::Object(vec![\
                             (\"{vn}\".to_string(), ::serde::content::Value::Array(vec![{items}]))]),"
                    )
                }
                VariantKind::Named(fields) => {
                    let binds = fields
                        .iter()
                        .map(|f| f.name.clone())
                        .collect::<Vec<_>>()
                        .join(", ");
                    let entries = fields
                        .iter()
                        .map(|f| {
                            let f = &f.name;
                            format!(
                                "(\"{f}\".to_string(), ::serde::Serialize::to_content({f})),"
                            )
                        })
                        .collect::<String>();
                    format!(
                        "{name}::{vn} {{ {binds} }} => ::serde::content::Value::Object(vec![\
                             (\"{vn}\".to_string(), ::serde::content::Value::Object(vec![{entries}]))]),"
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::content::Value {{\n\
                 match self {{ {arms} }}\n\
             }}\n\
         }}"
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| format!("\"{vn}\" => return Ok({name}::{vn}),", vn = v.name))
        .collect();
    let tagged_arms: String = variants
        .iter()
        .filter_map(|v| {
            let vn = &v.name;
            match &v.kind {
                VariantKind::Unit => None,
                VariantKind::Tuple(1) => Some(format!(
                    "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_content(inner)?)),"
                )),
                VariantKind::Tuple(n) => {
                    let fields = (0..*n)
                        .map(|i| {
                            format!("::serde::Deserialize::from_content(&items[{i}])?,")
                        })
                        .collect::<String>();
                    Some(format!(
                        "\"{vn}\" => {{\n\
                             let items = inner.as_array().ok_or_else(|| \
                                 ::serde::Error::new(\"expected array for {name}::{vn}\"))?;\n\
                             if items.len() != {n} {{\n\
                                 return Err(::serde::Error::new(\"arity mismatch for {name}::{vn}\"));\n\
                             }}\n\
                             Ok({name}::{vn}({fields}))\n\
                         }}"
                    ))
                }
                VariantKind::Named(fields) => {
                    let inits = fields.iter().map(field_init).collect::<String>();
                    Some(format!(
                        "\"{vn}\" => {{\n\
                             let entries = inner.as_object().ok_or_else(|| \
                                 ::serde::Error::new(\"expected object for {name}::{vn}\"))?;\n\
                             Ok({name}::{vn} {{ {inits} }})\n\
                         }}"
                    ))
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_content(value: &::serde::content::Value) -> Result<Self, ::serde::Error> {{\n\
                 if let Some(tag) = value.as_str() {{\n\
                     match tag {{ {unit_arms} _ => {{}} }}\n\
                     return Err(::serde::Error::new(\
                         format!(\"unknown unit variant `{{tag}}` for enum {name}\")));\n\
                 }}\n\
                 let entries = value.as_object().ok_or_else(|| \
                     ::serde::Error::new(\"expected string or single-key object for enum {name}\"))?;\n\
                 if entries.len() != 1 {{\n\
                     return Err(::serde::Error::new(\"expected single-key object for enum {name}\"));\n\
                 }}\n\
                 let (tag, inner) = &entries[0];\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n\
                     {tagged_arms}\n\
                     other => Err(::serde::Error::new(\
                         format!(\"unknown variant `{{other}}` for enum {name}\"))),\n\
                 }}\n\
             }}\n\
         }}"
    )
}

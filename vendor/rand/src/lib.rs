//! Offline drop-in subset of the `rand` crate API.
//!
//! This workspace builds in a network-isolated environment, so the real
//! `rand` crate cannot be fetched from crates.io. This vendored stub
//! reimplements exactly the surface the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range`,
//! `Rng::gen_bool` — on top of a SplitMix64 generator. Determinism per
//! seed is preserved (two generators with equal seeds produce equal
//! streams), which is all the workspace's reproducibility contract needs;
//! the concrete stream differs from upstream `rand`'s ChaCha-based
//! `StdRng`.

#![forbid(unsafe_code)]

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling interface, mirroring `rand::Rng`.
pub trait Rng: RngCore + Sized {
    /// Samples a value of type `T` from its "standard" distribution
    /// (uniform over the type's domain; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// The output is a free type parameter (as in upstream `rand`) so
    /// unsuffixed literals like `gen_range(0..1000)` take their type from
    /// the surrounding context.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. Equal seeds give equal
    /// streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampleable from their standard distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Value types uniformly sampleable from a bounded interval.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[start, end)`.
    fn sample_half_open<R: RngCore>(rng: &mut R, start: Self, end: Self) -> Self;
    /// Uniform draw from `[start, end]`.
    fn sample_inclusive<R: RngCore>(rng: &mut R, start: Self, end: Self) -> Self;
}

/// Ranges a [`Rng`] can sample `T` from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start < end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
            fn sample_inclusive<R: RngCore>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// `f32` is intentionally not `SampleUniform`: the workspace never samples
// it, and keeping `f64` as the only float impl lets unsuffixed literals
// resolve without ambiguity.
impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore>(rng: &mut R, start: f64, end: f64) -> f64 {
        assert!(start < end, "cannot sample empty range");
        start + <f64 as Standard>::sample(rng) * (end - start)
    }
    fn sample_inclusive<R: RngCore>(rng: &mut R, start: f64, end: f64) -> f64 {
        assert!(start <= end, "cannot sample empty range");
        start + <f64 as Standard>::sample(rng) * (end - start)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: SplitMix64.
    ///
    /// Fast, passes the statistical sanity checks in this repository's
    /// test suite, and fully reproducible per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    /// Alias: the small-footprint generator is the same SplitMix64 here.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn int_ranges_inclusive_and_exclusive() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..=50);
            assert!((10..=50).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn float_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut min = f64::MAX;
        let mut max = f64::MIN;
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
            min = min.min(v);
            max = max.max(v);
        }
        assert!(min < -0.9 && max > 0.9, "poor coverage: [{min}, {max}]");
    }

    #[test]
    fn mean_of_unit_samples_is_centered() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / f64::from(n);
        assert!((0.49..0.51).contains(&mean), "mean {mean}");
    }
}

//! Offline drop-in subset of the `serde` API.
//!
//! The workspace builds in a network-isolated environment, so the real
//! `serde` cannot be fetched. This vendored stub keeps the call-site
//! surface identical — `use serde::{Serialize, Deserialize};` plus
//! `#[derive(Serialize, Deserialize)]` — but replaces serde's visitor
//! architecture with a simple tree data model ([`content::Value`]): a type
//! serializes *to* a tree and deserializes *from* one. `serde_json` (also
//! vendored) renders and parses that tree as JSON, following upstream
//! serde_json conventions (externally tagged enums, objects for structs),
//! so emitted JSON is interoperable with standard tooling.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model: a JSON-shaped value tree.
pub mod content {
    /// A dynamically typed serialized value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// JSON `null`.
        Null,
        /// A boolean.
        Bool(bool),
        /// A signed integer.
        Int(i64),
        /// An unsigned integer above `i64::MAX`.
        UInt(u64),
        /// A floating-point number.
        Float(f64),
        /// A string.
        String(String),
        /// An ordered sequence.
        Array(Vec<Value>),
        /// An ordered map with string keys (preserves insertion order).
        Object(Vec<(String, Value)>),
    }

    static NULL: Value = Value::Null;

    impl Value {
        /// The value as a bool, if it is one.
        #[must_use]
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        /// The value as an `i64`, if losslessly representable.
        #[must_use]
        pub fn as_i64(&self) -> Option<i64> {
            match self {
                Value::Int(i) => Some(*i),
                Value::UInt(u) => i64::try_from(*u).ok(),
                _ => None,
            }
        }

        /// The value as a `u64`, if losslessly representable.
        #[must_use]
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Int(i) => u64::try_from(*i).ok(),
                Value::UInt(u) => Some(*u),
                _ => None,
            }
        }

        /// The value as an `f64` (integers convert).
        #[must_use]
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Float(f) => Some(*f),
                Value::Int(i) => Some(*i as f64),
                Value::UInt(u) => Some(*u as f64),
                _ => None,
            }
        }

        /// The value as a string slice, if it is a string.
        #[must_use]
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        /// The value as an array slice, if it is an array.
        #[must_use]
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(items) => Some(items),
                _ => None,
            }
        }

        /// The value as object entries, if it is an object.
        #[must_use]
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Object(entries) => Some(entries),
                _ => None,
            }
        }

        /// Whether the value is `null`.
        #[must_use]
        pub fn is_null(&self) -> bool {
            matches!(self, Value::Null)
        }

        /// Member lookup on objects; `None` for other kinds.
        #[must_use]
        pub fn get(&self, key: &str) -> Option<&Value> {
            self.as_object()?
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
        }
    }

    impl std::ops::Index<&str> for Value {
        type Output = Value;
        fn index(&self, key: &str) -> &Value {
            self.get(key).unwrap_or(&NULL)
        }
    }

    impl std::ops::Index<usize> for Value {
        type Output = Value;
        fn index(&self, idx: usize) -> &Value {
            self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
        }
    }
}

use content::Value;

/// A (de)serialization error: a plain message.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself into the [`content::Value`] data model.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_content(&self) -> Value;
}

/// A type that can reconstruct itself from the [`content::Value`] data
/// model.
pub trait Deserialize: Sized {
    /// Deserializes an instance from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree does not have the expected shape.
    fn from_content(value: &Value) -> Result<Self, Error>;
}

// ---- identity impls for the data model itself -----------------------------

impl Serialize for Value {
    fn to_content(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_content(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

// ---- primitive impls ------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Value { Value::Int(i64::from(*self)) }
        }
        impl Deserialize for $t {
            fn from_content(value: &Value) -> Result<Self, Error> {
                value
                    .as_i64()
                    .and_then(|i| <$t>::try_from(i).ok())
                    .ok_or_else(|| Error::new(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Value {
                let wide = u64::from(*self);
                match i64::try_from(wide) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(wide),
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(value: &Value) -> Result<Self, Error> {
                value
                    .as_u64()
                    .and_then(|u| <$t>::try_from(u).ok())
                    .ok_or_else(|| Error::new(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_content(&self) -> Value {
        (*self as u64).to_content()
    }
}
impl Deserialize for usize {
    fn from_content(value: &Value) -> Result<Self, Error> {
        value
            .as_u64()
            .and_then(|u| usize::try_from(u).ok())
            .ok_or_else(|| Error::new("expected usize"))
    }
}

impl Serialize for isize {
    fn to_content(&self) -> Value {
        Value::Int(*self as i64)
    }
}
impl Deserialize for isize {
    fn from_content(value: &Value) -> Result<Self, Error> {
        value
            .as_i64()
            .and_then(|i| isize::try_from(i).ok())
            .ok_or_else(|| Error::new("expected isize"))
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_content(value: &Value) -> Result<Self, Error> {
        // serde_json renders non-finite floats as null; accept it back.
        if value.is_null() {
            return Ok(f64::NAN);
        }
        value.as_f64().ok_or_else(|| Error::new("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_content(value: &Value) -> Result<Self, Error> {
        Ok(f64::from_content(value)? as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_content(value: &Value) -> Result<Self, Error> {
        value.as_bool().ok_or_else(|| Error::new("expected bool"))
    }
}

impl Serialize for char {
    fn to_content(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for char {
    fn from_content(value: &Value) -> Result<Self, Error> {
        let s = value.as_str().ok_or_else(|| Error::new("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::new("expected single-char string")),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_content(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::new("expected string"))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Value {
        (**self).to_content()
    }
}

// ---- container impls ------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::new("expected array"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Value {
        match self {
            Some(v) => v.to_content(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(value: &Value) -> Result<Self, Error> {
        if value.is_null() {
            Ok(None)
        } else {
            T::from_content(value).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Value {
        (**self).to_content()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(value: &Value) -> Result<Self, Error> {
        T::from_content(value).map(Box::new)
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_content(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_content(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::new("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(value: &Value) -> Result<Self, Error> {
                let items = value.as_array().ok_or_else(|| Error::new("expected tuple array"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::new("tuple arity mismatch"));
                }
                Ok(($($name::from_content(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// ---- derive support helpers -----------------------------------------------

/// Looks up `name` in the entries of a serialized struct and
/// deserializes it; absent fields deserialize from `null` (so `Option`
/// fields default to `None`).
///
/// # Errors
///
/// Returns [`Error`] when the field is present but malformed, or absent
/// and not nullable.
pub fn field<T: Deserialize>(entries: &[(String, Value)], name: &str) -> Result<T, Error> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_content(v),
        None => {
            T::from_content(&Value::Null).map_err(|_| Error::new(format!("missing field `{name}`")))
        }
    }
}

/// Like [`field`], but for fields marked `#[serde(default)]`: an absent
/// field yields `T::default()` instead of an error.
///
/// # Errors
///
/// Returns [`Error`] only when the field is present but malformed.
pub fn field_or_default<T: Deserialize + Default>(
    entries: &[(String, Value)],
    name: &str,
) -> Result<T, Error> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_content(v),
        None => Ok(T::default()),
    }
}

#[cfg(test)]
mod tests {
    use super::content::Value;
    use super::{Deserialize, Serialize};

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i64::from_content(&42i64.to_content()).unwrap(), 42);
        assert_eq!(u64::from_content(&7u64.to_content()).unwrap(), 7);
        assert!(bool::from_content(&true.to_content()).unwrap());
        assert_eq!(
            String::from_content(&"hi".to_owned().to_content()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn option_none_is_null_and_back() {
        let none: Option<u64> = None;
        assert!(none.to_content().is_null());
        assert_eq!(Option::<u64>::from_content(&Value::Null).unwrap(), None);
    }

    #[test]
    fn missing_struct_field_errors_unless_nullable() {
        let entries = vec![("a".to_owned(), Value::Int(1))];
        assert_eq!(super::field::<i64>(&entries, "a").unwrap(), 1);
        assert!(super::field::<i64>(&entries, "b").is_err());
        assert_eq!(super::field::<Option<i64>>(&entries, "b").unwrap(), None);
    }

    #[test]
    fn object_indexing() {
        let v = Value::Object(vec![("k".into(), Value::Int(3))]);
        assert_eq!(v["k"].as_i64(), Some(3));
        assert!(v["absent"].is_null());
    }
}

//! Strategies: deterministic value generators with combinators.

use std::fmt::Debug;
use std::ops::Range;
use std::rc::Rc;

/// The per-case random source: SplitMix64.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed; equal seeds give equal streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A float uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A `usize` uniform in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        let span = (range.end - range.start) as u64;
        range.start + (self.next_u64() % span) as usize
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `map`.
    fn prop_map<O: Debug, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, map }
    }

    /// Feeds generated values into a second, dependent strategy.
    fn prop_flat_map<S, F>(self, flat_map: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap {
            inner: self,
            flat_map,
        }
    }

    /// Builds a recursive strategy: `self` generates leaves, and `branch`
    /// receives a strategy for sub-values (leaves or deeper branches) and
    /// returns the composite level. `depth` bounds the nesting; the
    /// remaining upstream tuning parameters are accepted for signature
    /// parity and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> ArcStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(ArcStrategy<Self::Value>) -> R,
    {
        let leaf = ArcStrategy::new(self);
        let mut layer = leaf.clone();
        for _ in 0..depth {
            let deeper = ArcStrategy::new(branch(layer));
            layer = ArcStrategy::new(Union::new(vec![leaf.clone(), deeper]));
        }
        layer
    }
}

/// Maps generated values through a function.
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.generate(rng))
    }
}

/// Chains a dependent strategy off generated values.
pub struct FlatMap<S, F> {
    inner: S,
    flat_map: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.flat_map)(self.inner.generate(rng)).generate(rng)
    }
}

/// A clone-able, type-erased strategy handle.
pub struct ArcStrategy<V> {
    generate: Rc<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Clone for ArcStrategy<V> {
    fn clone(&self) -> Self {
        ArcStrategy {
            generate: Rc::clone(&self.generate),
        }
    }
}

impl<V: Debug> ArcStrategy<V> {
    /// Erases a concrete strategy behind a shared handle.
    pub fn new<S: Strategy<Value = V> + 'static>(inner: S) -> Self {
        ArcStrategy {
            generate: Rc::new(move |rng| inner.generate(rng)),
        }
    }
}

impl<V: Debug> Strategy for ArcStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.generate)(rng)
    }
}

/// Uniform choice among alternatives (the engine behind `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<ArcStrategy<V>>,
}

impl<V: Debug> Union<V> {
    /// Builds a union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<ArcStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.usize_in(0..self.arms.len());
        self.arms[idx].generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---- `any::<T>()` ---------------------------------------------------------

/// Types with a whole-domain default strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy form of [`Arbitrary`]; created by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The whole-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mostly finite magnitudes across many scales; occasionally raw
        // bit patterns so NaN and the infinities are exercised too.
        if rng.next_u64().is_multiple_of(8) {
            f64::from_bits(rng.next_u64())
        } else {
            let magnitude = 10f64.powi((rng.next_u64() % 19) as i32 - 9);
            (rng.unit_f64() * 2.0 - 1.0) * magnitude
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32((rng.next_u64() % 0xD800) as u32).unwrap_or('?')
    }
}

// ---- ranges as strategies -------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// ---- tuples and vectors of strategies -------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

// ---- regex string strategies ----------------------------------------------

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_matching(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_matching(self, rng)
    }
}

/// One parsed regex element plus its repetition bounds.
struct Piece {
    kind: PieceKind,
    min: usize,
    max: usize,
}

enum PieceKind {
    Literal(char),
    /// `.`: any printable character except newline.
    Dot,
    /// `[...]`: inclusive character ranges.
    Class(Vec<(char, char)>),
}

/// Generates a string matching the subset of regex syntax the workspace
/// uses: literals, `.`, `[...]` classes with ranges, and the quantifiers
/// `*`, `+`, `?`, `{n}`, `{m,n}`.
fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse_pattern(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let count = if piece.min == piece.max {
            piece.min
        } else {
            rng.usize_in(piece.min..piece.max + 1)
        };
        for _ in 0..count {
            out.push(sample_piece(&piece.kind, rng));
        }
    }
    out
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let kind = match chars[i] {
            '.' => {
                i += 1;
                PieceKind::Dot
            }
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = if chars[i] == '\\' {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                i += 1; // closing ]
                PieceKind::Class(ranges)
            }
            '\\' => {
                i += 1;
                let c = match chars[i] {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                };
                i += 1;
                PieceKind::Literal(c)
            }
            other => {
                i += 1;
                PieceKind::Literal(other)
            }
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '*' => {
                    i += 1;
                    (0, 16)
                }
                '+' => {
                    i += 1;
                    (1, 16)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .expect("unterminated {} quantifier")
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    if let Some((lo, hi)) = body.split_once(',') {
                        (
                            lo.trim().parse().expect("bad quantifier"),
                            hi.trim().parse().expect("bad quantifier"),
                        )
                    } else {
                        let n = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { kind, min, max });
    }
    pieces
}

fn sample_piece(kind: &PieceKind, rng: &mut TestRng) -> char {
    match kind {
        PieceKind::Literal(c) => *c,
        PieceKind::Dot => {
            // Printable ASCII most of the time; occasional multi-byte
            // characters so UTF-8 boundary handling gets exercised.
            if rng.next_u64().is_multiple_of(8) {
                const EXOTIC: [char; 6] = ['é', 'λ', '→', '本', '😀', '\u{00a0}'];
                EXOTIC[rng.usize_in(0..EXOTIC.len())]
            } else {
                char::from_u32(0x20 + (rng.next_u64() % 0x5F) as u32).unwrap_or(' ')
            }
        }
        PieceKind::Class(ranges) => {
            let total: u32 = ranges
                .iter()
                .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                .sum();
            let mut pick = (rng.next_u64() % u64::from(total)) as u32;
            for (lo, hi) in ranges {
                let width = *hi as u32 - *lo as u32 + 1;
                if pick < width {
                    return char::from_u32(*lo as u32 + pick).unwrap_or(*lo);
                }
                pick -= width;
            }
            unreachable!("class sampling is exhaustive")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = TestRng::new(11);
        for _ in 0..200 {
            let s = generate_matching("[a-z][a-z0-9]{0,6}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn class_with_escapes_and_punctuation() {
        let mut rng = TestRng::new(5);
        for _ in 0..200 {
            let s = generate_matching("[a-zA-Z0-9 {};()<>,@=\n\t]*", &mut rng);
            assert!(s.len() <= 16);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " {};()<>,@=\n\t".contains(c)));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        #[allow(dead_code)] // payloads exist only to exercise generation
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let strat = any::<u8>()
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 6, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = TestRng::new(99);
        for _ in 0..100 {
            let _ = strat.generate(&mut rng);
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let strat = Union::new(vec![
            ArcStrategy::new(Just(1u8)),
            ArcStrategy::new(Just(2u8)),
        ]);
        let mut rng = TestRng::new(3);
        let draws: Vec<u8> = (0..50).map(|_| strat.generate(&mut rng)).collect();
        assert!(draws.contains(&1) && draws.contains(&2));
    }
}

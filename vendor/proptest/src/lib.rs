//! Offline drop-in subset of the `proptest` API.
//!
//! The workspace builds in a network-isolated environment, so the real
//! `proptest` cannot be fetched. This vendored stub keeps the call-site
//! surface the workspace uses — `proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_oneof!`, `Strategy` with
//! `prop_map`/`prop_flat_map`/`prop_recursive`, `any`, `Just`, regex
//! string strategies, `collection::{vec, btree_map}`, and `option::of` —
//! over a deterministic SplitMix64 case generator. Failing cases print
//! their generated inputs; there is no shrinking.

#![forbid(unsafe_code)]

pub mod strategy;

pub mod runner;

/// Collection strategies (`vec`, `btree_map`).
pub mod collection {
    use crate::strategy::{Strategy, TestRng};
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `BTreeMap`s with approximately `size` entries
    /// (key collisions may shrink the map, as in upstream proptest).
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// Generates maps of `key → value` entries with a count in `size`.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.clone());
            (0..len)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

/// Optional-value strategies (`of`).
pub mod option {
    use crate::strategy::{Strategy, TestRng};

    /// Strategy producing `Option`s of the inner strategy's values.
    pub struct OptionStrategy<S>(S);

    /// Generates `None` about a quarter of the time, `Some` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::runner::ProptestConfig;
    pub use crate::strategy::{any, ArcStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

// ---- macros ---------------------------------------------------------------

/// Declares property tests. Supports an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions
/// whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::runner::run(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                let __case = format!(
                    concat!($(stringify!($arg), " = {:?}; ",)+),
                    $(&$arg),+
                );
                let __outcome: ::std::result::Result<(), $crate::runner::TestCaseError> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                (__case, __outcome)
            });
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (with its generated inputs) rather than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), __l, __r,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+), __l, __r,
                ),
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
            )));
        }
    }};
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::ArcStrategy::new($strat)),+
        ])
    };
}

//! Test-case execution: deterministic seeds, failure reporting.

use crate::strategy::TestRng;

/// Per-test configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many generated cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property (from `prop_assert!` and friends).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps a failure message.
    #[must_use]
    pub fn fail(message: String) -> Self {
        TestCaseError(message)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runs `case` for each generated input; panics on the first failure,
/// printing the generated inputs. Seeds derive from the test name, so
/// runs are reproducible without a persistence file.
///
/// # Panics
///
/// Panics when a case fails, carrying the case description and message.
pub fn run(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
) {
    let base = fnv1a(name.as_bytes());
    for index in 0..u64::from(config.cases) {
        let mut rng = TestRng::new(base ^ (index.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        let (description, outcome) = case(&mut rng);
        if let Err(error) = outcome {
            panic!(
                "proptest `{name}` failed at case {index}/{}\n  inputs: {description}\n  {error}",
                config.cases
            );
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_executes_requested_cases() {
        let mut count = 0;
        run(&ProptestConfig::with_cases(17), "t", |_| {
            count += 1;
            (String::new(), Ok(()))
        });
        assert_eq!(count, 17);
    }

    #[test]
    #[should_panic(expected = "inputs: x = 3")]
    fn failures_carry_case_inputs() {
        run(&ProptestConfig::with_cases(1), "f", |_| {
            (
                "x = 3; ".to_string(),
                Err(TestCaseError::fail("boom".into())),
            )
        });
    }
}
